// Cross-module end-to-end tests: real bytes through encode -> lossy channel
// -> client -> exact reconstruction, including a UDP loopback transfer.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "carousel/carousel.hpp"
#include "core/tornado.hpp"
#include "fec/interleaved.hpp"
#include "net/loss.hpp"
#include "net/packet_header.hpp"
#include "net/udp.hpp"
#include "proto/client.hpp"
#include "util/random.hpp"

namespace fountain {
namespace {

TEST(EndToEnd, TornadoOverLossyCarousel) {
  // A "file" of 600 packets, carousel transmission, 30% loss, statistical
  // client with real payloads.
  const std::size_t k = 600;
  const std::size_t p = 64;
  core::TornadoCode code(core::TornadoParams::tornado_a(k, p, 123));
  util::SymbolMatrix file(k, p);
  file.fill_random(99);
  util::SymbolMatrix encoding(code.encoded_count(), p);
  code.encode(file, encoding);

  util::Rng rng(1);
  const auto carousel =
      carousel::Carousel::random_permutation(code.encoded_count(), rng);
  net::BernoulliLoss loss(0.3, 2);
  proto::StatisticalDataClient client(code, 0.05, 0.01);

  bool done = false;
  for (std::uint64_t t = 0; t < 1000000 && !done; ++t) {
    if (loss.lost()) continue;
    const auto index = carousel.packet_at(t);
    done = client.on_packet(index, encoding.row(index));
  }
  ASSERT_TRUE(done);
  EXPECT_EQ(client.source(), file);
}

TEST(EndToEnd, TwoAsynchronousReceiversReconstructIndependently) {
  const std::size_t k = 400;
  core::TornadoCode code(core::TornadoParams::tornado_a(k, 32, 5));
  util::SymbolMatrix file(k, 32);
  file.fill_random(7);
  util::SymbolMatrix encoding(code.encoded_count(), 32);
  code.encode(file, encoding);

  util::Rng rng(3);
  const auto carousel =
      carousel::Carousel::random_permutation(code.encoded_count(), rng);

  // Receiver 1 joins at slot 0 with 10% loss; receiver 2 joins mid-cycle
  // with 40% loss. Both must reconstruct the identical file.
  for (const auto& [start, rate, seed] :
       {std::tuple{0ULL, 0.1, 11ULL}, std::tuple{500ULL, 0.4, 12ULL}}) {
    net::BernoulliLoss loss(rate, seed);
    auto decoder = code.make_decoder();
    bool done = false;
    for (std::uint64_t t = 0; t < 1000000 && !done; ++t) {
      if (loss.lost()) continue;
      const auto index = carousel.packet_at(start + t);
      done = decoder->add_symbol(index, encoding.row(index));
    }
    ASSERT_TRUE(done);
    EXPECT_EQ(decoder->source(), file);
  }
}

TEST(EndToEnd, InterleavedClientReconstructsFile) {
  fec::InterleavedCode code(200, 10, 32);
  util::SymbolMatrix file(200, 32);
  file.fill_random(8);
  util::SymbolMatrix encoding(code.encoded_count(), 32);
  code.encode(file, encoding);

  net::GilbertElliottLoss loss(0.2, 6.0, 9);
  auto decoder = code.make_decoder();
  bool done = false;
  for (std::uint64_t t = 0; t < 1000000 && !done; ++t) {
    if (loss.lost()) continue;
    const auto index =
        static_cast<std::uint32_t>(t % code.encoded_count());
    done = decoder->add_symbol(index, encoding.row(index));
  }
  ASSERT_TRUE(done);
  EXPECT_EQ(decoder->source(), file);
}

TEST(EndToEnd, UdpLoopbackFountainTransfer) {
  // A miniature of the paper's prototype: server thread blasts the encoding
  // over UDP loopback with 512-byte packets (500 B payload + 12 B header)
  // and an artificial 20% drop; client reconstructs, then the server stops.
  const std::size_t k = 120;
  const std::size_t payload_bytes = 500;
  core::TornadoCode code(core::TornadoParams::tornado_a(k, payload_bytes, 17));
  util::SymbolMatrix file(k, payload_bytes);
  file.fill_random(21);
  util::SymbolMatrix encoding(code.encoded_count(), payload_bytes);
  code.encode(file, encoding);

  net::UdpSocket client_sock;
  client_sock.bind({"127.0.0.1", 0});
  const auto client_port = client_sock.local_port();

  std::atomic<bool> stop{false};
  std::thread server([&] {
    net::UdpSocket server_sock;
    util::Rng rng(22);
    net::BernoulliLoss drop(0.2, 23);  // simulated channel impairment
    const auto order =
        carousel::Carousel::random_permutation(code.encoded_count(), rng);
    std::uint32_t serial = 0;
    for (std::uint64_t t = 0; !stop.load(std::memory_order_relaxed); ++t) {
      const auto index = order.packet_at(t);
      ++serial;
      if (drop.lost()) continue;
      const auto wire = net::frame_packet(
          net::PacketHeader{index, serial, code.codec_id(), 0},
          encoding.row(index));
      server_sock.send_to({"127.0.0.1", client_port},
                          util::ConstByteSpan(wire));
      if (t % 64 == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  });

  proto::StatisticalDataClient client(code, 0.05, 0.01);
  bool done = false;
  for (int i = 0; i < 200000 && !done; ++i) {
    const auto datagram = client_sock.receive(std::chrono::milliseconds(2000));
    ASSERT_TRUE(datagram.has_value()) << "server went quiet";
    const auto parsed = net::parse_packet(util::ConstByteSpan(datagram->payload));
    ASSERT_TRUE(parsed.ok()) << net::parse_error_name(parsed.error);
    ASSERT_EQ(parsed.packet.header.codec, code.codec_id());
    ASSERT_EQ(parsed.packet.payload.size(), payload_bytes);
    done = client.on_packet(parsed.packet.header.packet_index,
                            parsed.packet.payload);
  }
  stop.store(true);
  server.join();
  ASSERT_TRUE(done);
  EXPECT_EQ(client.source(), file);
}

TEST(EndToEnd, StretchFourAblationPath) {
  // Larger stretch factors must also round-trip (used by the ablation bench).
  core::TornadoParams params = core::TornadoParams::tornado_a(300, 16, 31);
  params.stretch = 4.0;
  core::TornadoCode code(params);
  EXPECT_EQ(code.encoded_count(), 1200u);
  util::SymbolMatrix file(300, 16);
  file.fill_random(32);
  util::SymbolMatrix encoding(code.encoded_count(), 16);
  code.encode(file, encoding);
  util::Rng rng(33);
  const auto order = rng.permutation(code.encoded_count());
  auto decoder = code.make_decoder();
  bool done = false;
  for (const auto index : order) {
    if (decoder->add_symbol(index, encoding.row(index))) {
      done = true;
      break;
    }
  }
  ASSERT_TRUE(done);
  EXPECT_EQ(decoder->source(), file);
}

}  // namespace
}  // namespace fountain
