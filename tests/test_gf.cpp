// Field axioms and buffer-kernel correctness for GF(2^8) and GF(2^16).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "gf/gf256.hpp"
#include "gf/gf65536.hpp"
#include "util/random.hpp"
#include "util/symbols.hpp"

namespace fountain {
namespace {

using gf::GF256;
using gf::GF65536;

TEST(GF256, AdditionIsXor) {
  EXPECT_EQ(GF256::add(0x53, 0xCA), 0x53 ^ 0xCA);
  EXPECT_EQ(GF256::sub(0x53, 0xCA), 0x53 ^ 0xCA);
}

TEST(GF256, MultiplicativeIdentityAndZero) {
  for (unsigned a = 0; a < 256; ++a) {
    EXPECT_EQ(GF256::mul(static_cast<std::uint8_t>(a), 1), a);
    EXPECT_EQ(GF256::mul(1, static_cast<std::uint8_t>(a)), a);
    EXPECT_EQ(GF256::mul(static_cast<std::uint8_t>(a), 0), 0);
  }
}

TEST(GF256, EveryNonzeroElementHasInverse) {
  for (unsigned a = 1; a < 256; ++a) {
    const auto inv = GF256::inv(static_cast<std::uint8_t>(a));
    EXPECT_EQ(GF256::mul(static_cast<std::uint8_t>(a), inv), 1) << "a=" << a;
  }
}

TEST(GF256, InverseOfZeroThrows) {
  EXPECT_THROW(GF256::inv(0), std::domain_error);
  EXPECT_THROW(GF256::div(1, 0), std::domain_error);
  EXPECT_THROW(GF256::log(0), std::domain_error);
}

TEST(GF256, MultiplicationAssociativeAndCommutative) {
  util::Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.below(256));
    const auto b = static_cast<std::uint8_t>(rng.below(256));
    const auto c = static_cast<std::uint8_t>(rng.below(256));
    EXPECT_EQ(GF256::mul(a, b), GF256::mul(b, a));
    EXPECT_EQ(GF256::mul(GF256::mul(a, b), c), GF256::mul(a, GF256::mul(b, c)));
  }
}

TEST(GF256, Distributivity) {
  util::Rng rng(4);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.below(256));
    const auto b = static_cast<std::uint8_t>(rng.below(256));
    const auto c = static_cast<std::uint8_t>(rng.below(256));
    EXPECT_EQ(GF256::mul(a, GF256::add(b, c)),
              GF256::add(GF256::mul(a, b), GF256::mul(a, c)));
  }
}

TEST(GF256, ExpLogRoundTrip) {
  for (unsigned a = 1; a < 256; ++a) {
    EXPECT_EQ(GF256::exp(GF256::log(static_cast<std::uint8_t>(a))), a);
  }
}

TEST(GF256, GeneratorHasFullOrder) {
  // alpha = 2 must generate all 255 nonzero elements.
  std::vector<bool> seen(256, false);
  std::uint8_t x = 1;
  for (int i = 0; i < 255; ++i) {
    EXPECT_FALSE(seen[x]);
    seen[x] = true;
    x = GF256::mul(x, 2);
  }
  EXPECT_EQ(x, 1);  // order exactly 255
}

TEST(GF256, DivIsMulByInverse) {
  util::Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.below(256));
    const auto b = static_cast<std::uint8_t>(1 + rng.below(255));
    EXPECT_EQ(GF256::div(a, b), GF256::mul(a, GF256::inv(b)));
  }
}

TEST(GF256, FmaBufferMatchesScalar) {
  util::Rng rng(6);
  util::SymbolMatrix m(2, 257);  // odd size: GF256 kernel is byte-wise
  m.fill_random(6);
  const std::uint8_t c = 0x8E;
  std::vector<std::uint8_t> expect(257);
  for (int i = 0; i < 257; ++i) {
    expect[i] = m.row(0)[i] ^ GF256::mul(c, m.row(1)[i]);
  }
  GF256::fma_buffer(m.row(0).data(), m.row(1).data(), 257, c);
  for (int i = 0; i < 257; ++i) EXPECT_EQ(m.row(0)[i], expect[i]);
}

TEST(GF256, FmaBufferSpecialConstants) {
  util::SymbolMatrix m(2, 64);
  m.fill_random(7);
  util::SymbolMatrix orig = m;
  GF256::fma_buffer(m.row(0).data(), m.row(1).data(), 64, 0);  // no-op
  EXPECT_EQ(m, orig);
  GF256::fma_buffer(m.row(0).data(), m.row(1).data(), 64, 1);  // plain xor
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(m.row(0)[i], orig.row(0)[i] ^ orig.row(1)[i]);
  }
}

TEST(GF256, ScaleBuffer) {
  util::SymbolMatrix m(1, 100);
  m.fill_random(8);
  util::SymbolMatrix orig = m;
  GF256::scale_buffer(m.row(0).data(), 100, 0x42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(m.row(0)[i], GF256::mul(0x42, orig.row(0)[i]));
  }
}

TEST(GF65536, MultiplicativeIdentityAndZero) {
  util::Rng rng(9);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint16_t>(rng.below(65536));
    EXPECT_EQ(GF65536::mul(a, 1), a);
    EXPECT_EQ(GF65536::mul(a, 0), 0);
  }
}

TEST(GF65536, InversesSampled) {
  util::Rng rng(10);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint16_t>(1 + rng.below(65535));
    EXPECT_EQ(GF65536::mul(a, GF65536::inv(a)), 1);
  }
}

TEST(GF65536, InverseOfZeroThrows) {
  EXPECT_THROW(GF65536::inv(0), std::domain_error);
  EXPECT_THROW(GF65536::div(1, 0), std::domain_error);
}

TEST(GF65536, FieldAxiomsSampled) {
  util::Rng rng(11);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint16_t>(rng.below(65536));
    const auto b = static_cast<std::uint16_t>(rng.below(65536));
    const auto c = static_cast<std::uint16_t>(rng.below(65536));
    EXPECT_EQ(GF65536::mul(a, b), GF65536::mul(b, a));
    EXPECT_EQ(GF65536::mul(GF65536::mul(a, b), c),
              GF65536::mul(a, GF65536::mul(b, c)));
    EXPECT_EQ(GF65536::mul(a, GF65536::add(b, c)),
              GF65536::add(GF65536::mul(a, b), GF65536::mul(a, c)));
  }
}

TEST(GF65536, ExpLogRoundTripSampled) {
  util::Rng rng(12);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint16_t>(1 + rng.below(65535));
    EXPECT_EQ(GF65536::exp(GF65536::log(a)), a);
  }
}

TEST(GF65536, FmaBufferMatchesScalar) {
  util::SymbolMatrix m(2, 64);
  m.fill_random(13);
  const std::uint16_t c = 0xBEEF;
  std::vector<std::uint8_t> expect(64);
  for (int i = 0; i < 64; i += 2) {
    std::uint16_t src;
    std::uint16_t dst;
    std::memcpy(&src, m.row(1).data() + i, 2);
    std::memcpy(&dst, m.row(0).data() + i, 2);
    const std::uint16_t out = dst ^ GF65536::mul(c, src);
    std::memcpy(expect.data() + i, &out, 2);
  }
  GF65536::fma_buffer(m.row(0).data(), m.row(1).data(), 64, c);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(m.row(0)[i], expect[i]);
}

TEST(GF65536, OddBufferThrows) {
  util::SymbolMatrix m(2, 10);
  EXPECT_THROW(GF65536::fma_buffer(m.row(0).data(), m.row(1).data(), 9, 3),
               std::invalid_argument);
  EXPECT_THROW(GF65536::scale_buffer(m.row(0).data(), 9, 3),
               std::invalid_argument);
}

TEST(GF65536, ScaleBufferZeroClears) {
  util::SymbolMatrix m(1, 32);
  m.fill_random(14);
  GF65536::scale_buffer(m.row(0).data(), 32, 0);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(m.row(0)[i], 0);
}

}  // namespace
}  // namespace fountain
