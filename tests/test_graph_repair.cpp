// Structural invariants of the repaired Tornado graphs — the properties that
// turned out to decide reception overhead in practice: no parallel edges, no
// duplicate degree-2 neighbourhoods, no short cycles in the degree-2
// subgraph, and degree-sequence preservation under repair.
#include <gtest/gtest.h>

#include <map>
#include <queue>
#include <set>

#include "core/degree.hpp"
#include "core/graph.hpp"
#include "core/tornado.hpp"
#include "util/random.hpp"

namespace fountain {
namespace {

using core::BipartiteGraph;
using core::CheckDegreePolicy;
using core::DegreeDistribution;

DegreeDistribution tornado_a_dist() {
  return DegreeDistribution(
      {{2, 0.2454}, {3, 0.2150}, {8, 0.2757}, {40, 0.2639}});
}

/// Shortest cycle through the degree-2 subgraph containing a given edge.
unsigned deg2_cycle_through(
    const std::map<std::uint32_t,
                   std::vector<std::pair<std::uint32_t, std::uint32_t>>>& adj,
    std::uint32_t a, std::uint32_t b, std::uint32_t self, unsigned limit) {
  std::map<std::uint32_t, unsigned> dist;
  std::queue<std::uint32_t> queue;
  queue.push(a);
  dist[a] = 0;
  while (!queue.empty()) {
    const auto c = queue.front();
    queue.pop();
    if (dist[c] >= limit) break;
    const auto it = adj.find(c);
    if (it == adj.end()) continue;
    for (const auto& [next, via] : it->second) {
      if (via == self) continue;
      if (next == b) return dist[c] + 2;  // path + the edge itself
      if (!dist.count(next)) {
        dist[next] = dist[c] + 1;
        queue.push(next);
      }
    }
  }
  return limit + 100;  // no short cycle found
}

class RepairInvariants : public ::testing::TestWithParam<int> {};

TEST_P(RepairInvariants, HoldOnRandomGraphs) {
  const int seed = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(seed));
  const auto dist = tornado_a_dist();
  const std::size_t left = 4096;
  const auto g = BipartiteGraph::random(left, left / 2, dist, rng,
                                        CheckDegreePolicy::kRegular, 8);

  // (a) No parallel edges: every check's neighbour list is duplicate-free.
  for (std::size_t r = 0; r < g.right_count(); ++r) {
    std::set<std::uint32_t> seen;
    for (const auto l : g.check_neighbors(r)) {
      EXPECT_TRUE(seen.insert(l).second) << "check " << r;
    }
  }

  // (b) No two degree-2 lefts share a neighbourhood, and (c) the degree-2
  // subgraph has no cycle of length <= 8.
  std::set<std::pair<std::uint32_t, std::uint32_t>> pairs;
  std::map<std::uint32_t,
           std::vector<std::pair<std::uint32_t, std::uint32_t>>> adj;
  for (std::uint32_t l = 0; l < left; ++l) {
    const auto checks = g.left_checks(l);
    if (checks.size() != 2) continue;
    const auto pr = std::minmax(checks[0], checks[1]);
    EXPECT_TRUE(pairs.emplace(pr.first, pr.second).second)
        << "duplicate degree-2 pair at left " << l;
    adj[checks[0]].emplace_back(checks[1], l);
    adj[checks[1]].emplace_back(checks[0], l);
  }
  for (std::uint32_t l = 0; l < left; ++l) {
    const auto checks = g.left_checks(l);
    if (checks.size() != 2) continue;
    const unsigned cycle =
        deg2_cycle_through(adj, checks[0], checks[1], l, 7);
    EXPECT_GT(cycle, 8u) << "short degree-2 cycle through left " << l;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RepairInvariants,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(RepairInvariants, RegularChecksAreBalanced) {
  util::Rng rng(9);
  const auto dist = tornado_a_dist();
  const auto g = BipartiteGraph::random(8192, 4096, dist, rng,
                                        CheckDegreePolicy::kRegular);
  // Check degrees vary only a little around E / m (repair swaps keep the
  // socket deal, so degrees stay within a small band).
  const double avg =
      static_cast<double>(g.edge_count()) / static_cast<double>(4096);
  for (std::size_t r = 0; r < g.right_count(); ++r) {
    const auto deg = static_cast<double>(g.check_neighbors(r).size());
    EXPECT_NEAR(deg, avg, 4.0) << "check " << r;
  }
}

TEST(RepairInvariants, PoissonChecksAreOverdispersed) {
  util::Rng rng(10);
  const auto dist = tornado_a_dist();
  const auto g = BipartiteGraph::random(8192, 4096, dist, rng,
                                        CheckDegreePolicy::kPoisson);
  // Variance of Poisson check degrees ~ mean (far from regular).
  double mean = 0.0;
  for (std::size_t r = 0; r < g.right_count(); ++r) {
    mean += static_cast<double>(g.check_neighbors(r).size());
  }
  mean /= 4096.0;
  double var = 0.0;
  for (std::size_t r = 0; r < g.right_count(); ++r) {
    const double d = static_cast<double>(g.check_neighbors(r).size()) - mean;
    var += d * d;
  }
  var /= 4096.0;
  EXPECT_GT(var, mean * 0.5);
}

TEST(RepairInvariants, LeftDegreesFollowDistribution) {
  // Repair must preserve the sampled left degree sequence (only endpoints
  // move). Verify the empirical node fractions match the distribution.
  util::Rng rng(11);
  const auto dist = tornado_a_dist();
  const std::size_t left = 20000;
  const auto g = BipartiteGraph::random(left, left / 2, dist, rng);
  std::map<std::size_t, std::size_t> counts;
  for (std::uint32_t l = 0; l < left; ++l) {
    ++counts[g.left_checks(l).size()];
  }
  for (const unsigned deg : {2u, 3u, 8u, 40u}) {
    const double expected = dist.node_fraction(deg);
    const double got =
        static_cast<double>(counts[deg]) / static_cast<double>(left);
    EXPECT_NEAR(got, expected, 0.02) << "degree " << deg;
  }
}

TEST(DegreeDistribution, SpikeValidation) {
  EXPECT_THROW(DegreeDistribution({}), std::invalid_argument);
  EXPECT_THROW(DegreeDistribution({{1, 0.5}, {3, 0.5}}),
               std::invalid_argument);
  EXPECT_THROW(DegreeDistribution({{2, 0.5}, {2, 0.5}}),
               std::invalid_argument);
  EXPECT_THROW(DegreeDistribution({{2, -0.1}, {3, 1.1}}),
               std::invalid_argument);
  EXPECT_THROW(DegreeDistribution({{2, 0.0}, {3, 0.0}}),
               std::invalid_argument);
}

TEST(DegreeDistribution, SpikesNormalize) {
  DegreeDistribution dist({{2, 2.0}, {4, 2.0}});  // weights need not sum to 1
  EXPECT_DOUBLE_EQ(dist.edge_fraction(2), 0.5);
  EXPECT_DOUBLE_EQ(dist.edge_fraction(4), 0.5);
  EXPECT_DOUBLE_EQ(dist.edge_fraction(3), 0.0);
  // avg node degree = 1 / (0.5/2 + 0.5/4) = 8/3.
  EXPECT_NEAR(dist.average_node_degree(), 8.0 / 3.0, 1e-12);
  EXPECT_EQ(dist.min_degree(), 2u);
  EXPECT_EQ(dist.max_degree(), 4u);
}

TEST(Tornado, PerLevelDistributionFallback) {
  // Small cascade levels must not use the 40-degree spike (there would be
  // almost no such nodes); verify via the constructed graph's max degree.
  core::TornadoCode code(core::TornadoParams::tornado_a(2048, 16, 5));
  const auto& cascade = code.cascade();
  for (std::size_t j = 0; j < cascade.graph_count(); ++j) {
    const auto& g = cascade.graph(j);
    std::size_t max_deg = 0;
    for (std::uint32_t l = 0; l < g.left_count(); ++l) {
      max_deg = std::max(max_deg, g.left_checks(l).size());
    }
    if (g.left_count() < 16 * 40) {
      EXPECT_LE(max_deg, 9u) << "level " << j << " should use the fallback";
    }
  }
}

}  // namespace
}  // namespace fountain
