// Codec API v2: the streaming BlockEncoder contract (write_symbol must be
// byte-identical to the whole-block encoding, order-independent and
// repeatable) and the CodecRegistry factory (wire/control fields -> matching
// code).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/tornado.hpp"
#include "fec/codec_registry.hpp"
#include "fec/interleaved.hpp"
#include "fec/reed_solomon.hpp"
#include "proto/control.hpp"
#include "util/random.hpp"

namespace fountain {
namespace {

using fec::CodecId;
using fec::CodecParams;
using fec::CodecRegistry;

/// Checks every encoder guarantee against the whole-block reference:
/// in-order, out-of-order and repeated requests, the batched path, and
/// byte-identity for every index.
void check_encoder_matches_block(const fec::ErasureCode& code,
                                 std::uint64_t data_seed) {
  const std::size_t n = code.encoded_count();
  const std::size_t bytes = code.symbol_size();
  util::SymbolMatrix source(code.source_count(), bytes);
  source.fill_random(data_seed);
  util::SymbolMatrix reference(n, bytes);
  code.encode(source, reference);

  const auto encoder = code.make_encoder(source);
  ASSERT_EQ(encoder->source_count(), code.source_count());
  ASSERT_EQ(encoder->encoded_count(), n);
  ASSERT_EQ(encoder->symbol_size(), bytes);

  util::SymbolMatrix scratch(1, bytes);
  // Every index, in order.
  for (std::size_t i = 0; i < n; ++i) {
    encoder->write_symbol(static_cast<std::uint32_t>(i), scratch.row(0));
    ASSERT_EQ(util::ConstSymbolView(scratch),
              reference.rows_view(i, 1))
        << "write_symbol(" << i << ") diverges from whole-block row";
  }
  // Out-of-order and repeated requests must be pure functions of the index.
  util::Rng rng(data_seed ^ 0xa5a5);
  for (int trial = 0; trial < 64; ++trial) {
    const auto index = static_cast<std::uint32_t>(rng.below(n));
    encoder->write_symbol(index, scratch.row(0));
    EXPECT_EQ(util::ConstSymbolView(scratch), reference.rows_view(index, 1))
        << "repeated/out-of-order write_symbol(" << index << ") diverges";
  }
  // Batched path, spanning arbitrary interior ranges.
  const std::size_t batch = std::min<std::size_t>(n, 7);
  util::SymbolMatrix rows(batch, bytes);
  for (const double frac : {0.0, 0.33, 0.71}) {
    const auto first = static_cast<std::uint32_t>(
        static_cast<double>(n - batch) * frac);
    encoder->write_symbols(first, rows);
    EXPECT_EQ(util::ConstSymbolView(rows), reference.rows_view(first, batch));
  }
}

TEST(BlockEncoder, MatchesWholeBlockForEveryRegisteredCodec) {
  // One code per registered family, via the same factory the wire uses.
  CodecParams params;
  params.k = 120;
  params.symbol_size = 64;
  params.seed = 9;
  for (const CodecId id : CodecRegistry::builtin().ids()) {
    SCOPED_TRACE(CodecRegistry::builtin().name(id));
    const auto code = CodecRegistry::builtin().create(id, params);
    check_encoder_matches_block(*code, 1234);
  }
}

TEST(BlockEncoder, TornadoTailBoundary) {
  // The encoder serves three index regimes — systematic prefix, cascade
  // check levels, RS tail parity — from different storage; walk the
  // boundaries explicitly.
  core::TornadoCode code(core::TornadoParams::tornado_a(600, 32, 5));
  const core::Cascade& cascade = code.cascade();
  util::SymbolMatrix source(600, 32);
  source.fill_random(77);
  util::SymbolMatrix reference(code.encoded_count(), 32);
  code.encode(source, reference);
  const auto encoder = code.make_encoder(source);

  util::SymbolMatrix scratch(1, 32);
  const std::size_t probes[] = {0,
                                code.source_count() - 1,
                                code.source_count(),
                                cascade.node_count() - 1,
                                cascade.node_count(),
                                code.encoded_count() - 1};
  for (const std::size_t i : probes) {
    encoder->write_symbol(static_cast<std::uint32_t>(i), scratch.row(0));
    EXPECT_EQ(util::ConstSymbolView(scratch), reference.rows_view(i, 1))
        << "regime boundary index " << i;
  }
  // A batch straddling the cascade/tail boundary.
  util::SymbolMatrix rows(4, 32);
  const auto first = static_cast<std::uint32_t>(cascade.node_count() - 2);
  encoder->write_symbols(first, rows);
  EXPECT_EQ(util::ConstSymbolView(rows), reference.rows_view(first, 4));
}

TEST(BlockEncoder, OddSymbolSizes) {
  // Families whose fields have byte alignment must accept odd symbol sizes
  // (GF(256) Reed-Solomon; interleaved with small GF(256) blocks).
  const auto rs = fec::make_reed_solomon(fec::RsKind::kCauchy, 40, 40, 33);
  check_encoder_matches_block(*rs, 4321);
  const auto vand =
      fec::make_reed_solomon(fec::RsKind::kVandermonde, 40, 40, 33);
  check_encoder_matches_block(*vand, 4321);
  fec::InterleavedCode inter(100, 10, 33);
  check_encoder_matches_block(inter, 999);
}

TEST(BlockEncoder, ValidatesShapesAndIndices) {
  core::TornadoCode code(core::TornadoParams::tornado_a(100, 16, 3));
  util::SymbolMatrix source(100, 16);
  util::SymbolMatrix bad_rows(99, 16);
  util::SymbolMatrix bad_width(100, 18);
  EXPECT_THROW(code.make_encoder(bad_rows), std::invalid_argument);
  EXPECT_THROW(code.make_encoder(bad_width), std::invalid_argument);

  const auto encoder = code.make_encoder(source);
  util::SymbolMatrix scratch(1, 16);
  EXPECT_THROW(
      encoder->write_symbol(
          static_cast<std::uint32_t>(code.encoded_count()), scratch.row(0)),
      std::out_of_range);
  util::SymbolMatrix wrong(1, 8);
  EXPECT_THROW(encoder->write_symbol(0, wrong.row(0)), std::invalid_argument);
}

TEST(BlockEncoder, StateStaysBelowSourceSize) {
  // The memory claim behind the redesign: encoder state is at most ~k * P
  // (Tornado's check levels) on top of the borrowed source — never the
  // n * P of a materialized encoding.
  CodecParams params;
  params.k = 512;
  params.symbol_size = 64;
  for (const CodecId id : CodecRegistry::builtin().ids()) {
    SCOPED_TRACE(CodecRegistry::builtin().name(id));
    const auto code = CodecRegistry::builtin().create(id, params);
    util::SymbolMatrix source(code->source_count(), code->symbol_size());
    const auto encoder = code->make_encoder(source);
    EXPECT_LE(encoder->state_bytes(), source.size_bytes());
    EXPECT_LT(encoder->state_bytes() + source.size_bytes(),
              code->encoded_count() * code->symbol_size());
  }
}

TEST(CodecRegistry, RoundTripsWireFields) {
  // Header/control fields -> code -> the same fields back.
  CodecParams params;
  params.k = 200;
  params.stretch = 2.0;
  params.symbol_size = 48;
  params.seed = 31;
  for (const CodecId id : CodecRegistry::builtin().ids()) {
    SCOPED_TRACE(CodecRegistry::builtin().name(id));
    const auto code = CodecRegistry::builtin().create(id, params);
    EXPECT_EQ(code->codec_id(), id);
    EXPECT_EQ(code->source_count(), params.k);
    EXPECT_EQ(code->symbol_size(), params.symbol_size);
    EXPECT_NEAR(code->stretch_factor(), params.stretch, 0.05);
  }
}

TEST(CodecRegistry, BothEndsDeriveIdenticalStreams) {
  // The constructive form of codec matching: two independent create() calls
  // from the same advertised fields produce byte-identical encoders.
  CodecParams params;
  params.k = 150;
  params.symbol_size = 32;
  params.seed = 17;
  for (const CodecId id : CodecRegistry::builtin().ids()) {
    SCOPED_TRACE(CodecRegistry::builtin().name(id));
    const auto server = CodecRegistry::builtin().create(id, params);
    const auto client = CodecRegistry::builtin().create(id, params);
    util::SymbolMatrix file(params.k, params.symbol_size);
    file.fill_random(5);
    const auto encoder = server->make_encoder(file);

    // Stream server symbols into the client's decoder in a shuffled order.
    util::Rng rng(23);
    auto decoder = client->make_decoder();
    util::SymbolMatrix wire(1, params.symbol_size);
    for (const auto index : rng.permutation(server->encoded_count())) {
      encoder->write_symbol(index, wire.row(0));
      if (decoder->add_symbol(index, wire.row(0))) break;
    }
    ASSERT_TRUE(decoder->complete());
    EXPECT_EQ(decoder->source(), util::ConstSymbolView(file));
  }
}

TEST(CodecRegistry, ControlInfoCarriesTheFactoryInputs) {
  // ControlInfo -> CodecParams -> registry reproduces the server's code for
  // every family, including the codec byte round-tripping over the wire.
  for (const CodecId id : CodecRegistry::builtin().ids()) {
    SCOPED_TRACE(CodecRegistry::builtin().name(id));
    const proto::ControlInfo info = proto::make_control_info(
        100'000, 500, /*variant=*/0, /*graph_seed=*/21, /*layers=*/1,
        /*permutation_seed=*/3, id);
    std::vector<std::uint8_t> frame(proto::ControlInfo::kWireSize);
    info.serialize(util::ByteSpan(frame));
    const auto result = proto::ControlInfo::parse(util::ConstByteSpan(frame));
    ASSERT_TRUE(result.ok()) << net::parse_error_name(result.error);
    const proto::ControlInfo& parsed = result.info;
    EXPECT_EQ(parsed.codec, id);

    const auto code =
        CodecRegistry::builtin().create(parsed.codec, parsed.codec_params());
    EXPECT_EQ(code->codec_id(), id);
    EXPECT_EQ(code->source_count(), info.source_count);
    EXPECT_EQ(code->symbol_size(), info.symbol_size);
  }
}

TEST(CodecRegistry, RejectsUnknownIdsAndBadParams) {
  const auto& registry = CodecRegistry::builtin();
  EXPECT_FALSE(registry.contains(static_cast<CodecId>(0x7f)));
  CodecParams params;
  params.k = 100;
  params.symbol_size = 32;
  EXPECT_THROW(registry.create(static_cast<CodecId>(0x7f), params),
               std::out_of_range);
  EXPECT_THROW(registry.name(static_cast<CodecId>(0x7f)), std::out_of_range);

  CodecParams zero_k = params;
  zero_k.k = 0;
  CodecParams flat = params;
  flat.stretch = 1.0;
  for (const CodecId id : registry.ids()) {
    SCOPED_TRACE(registry.name(id));
    EXPECT_THROW(registry.create(id, zero_k), std::invalid_argument);
    EXPECT_THROW(registry.create(id, flat), std::invalid_argument);
  }
}

TEST(CodecRegistry, PrivateRegistriesCanShadowFamilies) {
  CodecRegistry registry;
  EXPECT_FALSE(registry.contains(CodecId::kReedSolomon));
  registry.register_codec(CodecId::kReedSolomon, "vand_only",
                          [](const CodecParams& p) {
                            return fec::make_reed_solomon(
                                fec::RsKind::kVandermonde, p.k, p.k,
                                p.symbol_size);
                          });
  CodecParams params;
  params.k = 30;
  params.symbol_size = 16;
  const auto code = registry.create(CodecId::kReedSolomon, params);
  EXPECT_EQ(code->codec_id(), CodecId::kReedSolomon);
  EXPECT_EQ(registry.name(CodecId::kReedSolomon), "vand_only");
  EXPECT_EQ(registry.ids().size(), 1u);
}

}  // namespace
}  // namespace fountain
