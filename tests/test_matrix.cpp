// Dense-matrix algebra and the analytic Cauchy inverse.
#include <gtest/gtest.h>

#include "gf/gf256.hpp"
#include "gf/gf65536.hpp"
#include "gf/matrix.hpp"
#include "gf/rs_cauchy.hpp"
#include "util/random.hpp"

namespace fountain {
namespace {

using gf::GF256;
using gf::GF65536;
using gf::Matrix;

template <typename Field>
Matrix<Field> random_matrix(std::size_t n, util::Rng& rng) {
  Matrix<Field> m(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      m.at(r, c) =
          static_cast<typename Field::Element>(rng.below(Field::kOrder));
    }
  }
  return m;
}

TEST(Matrix, IdentityMultiplication) {
  util::Rng rng(1);
  const auto m = random_matrix<GF256>(8, rng);
  const auto id = Matrix<GF256>::identity(8);
  EXPECT_EQ(m.multiply(id), m);
  EXPECT_EQ(id.multiply(m), m);
}

TEST(Matrix, InverseTimesSelfIsIdentityGF256) {
  util::Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    Matrix<GF256> m;
    while (true) {
      m = random_matrix<GF256>(6, rng);
      try {
        const auto inv = m.inverted();
        EXPECT_EQ(inv.multiply(m), Matrix<GF256>::identity(6));
        EXPECT_EQ(m.multiply(inv), Matrix<GF256>::identity(6));
        break;
      } catch (const std::domain_error&) {
        continue;  // drew a singular matrix; try again
      }
    }
  }
}

TEST(Matrix, InverseTimesSelfIsIdentityGF65536) {
  util::Rng rng(3);
  Matrix<GF65536> m = random_matrix<GF65536>(10, rng);
  try {
    const auto inv = m.inverted();
    EXPECT_EQ(inv.multiply(m), Matrix<GF65536>::identity(10));
  } catch (const std::domain_error&) {
    GTEST_SKIP() << "random matrix happened to be singular";
  }
}

TEST(Matrix, SingularThrows) {
  Matrix<GF256> m(3, 3);  // all-zero
  EXPECT_THROW(m.inverted(), std::domain_error);
  // Duplicate rows.
  Matrix<GF256> dup(2, 2);
  dup.at(0, 0) = 5;
  dup.at(0, 1) = 7;
  dup.at(1, 0) = 5;
  dup.at(1, 1) = 7;
  EXPECT_THROW(dup.inverted(), std::domain_error);
}

TEST(Matrix, SolveMatchesMultiply) {
  util::Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    Matrix<GF256> m = random_matrix<GF256>(7, rng);
    std::vector<GF256::Element> x(7);
    for (auto& v : x) v = static_cast<GF256::Element>(rng.below(256));
    try {
      const auto b = m.multiply(x);
      EXPECT_EQ(m.solve(b), x);
    } catch (const std::domain_error&) {
      continue;
    }
  }
}

TEST(Matrix, DimensionMismatchThrows) {
  Matrix<GF256> a(2, 3);
  Matrix<GF256> b(2, 3);
  EXPECT_THROW(a.multiply(b), std::invalid_argument);
  EXPECT_THROW(a.inverted(), std::invalid_argument);
  EXPECT_THROW(a.solve({1, 2}), std::invalid_argument);
}

template <typename Field>
void check_cauchy_inverse(std::size_t m, std::uint64_t seed) {
  using Element = typename Field::Element;
  // Deterministic, pairwise-distinct points: xs = 0..m-1, ys spread beyond.
  std::vector<Element> xs(m);
  std::vector<Element> ys(m);
  for (std::size_t i = 0; i < m; ++i) {
    xs[i] = static_cast<Element>(i);
    ys[i] = static_cast<Element>(m + 1 + i * (seed % 3 + 1));
  }

  Matrix<Field> a(m, m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      a.at(i, j) = Field::inv(Field::add(xs[j], ys[i]));
    }
  }
  const auto analytic = gf::cauchy_inverse<Field>(xs, ys);
  EXPECT_EQ(analytic.multiply(a), Matrix<Field>::identity(m));
  EXPECT_EQ(analytic, a.inverted());
}

TEST(CauchyInverse, MatchesGaussianGF256Small) {
  check_cauchy_inverse<GF256>(1, 10);
  check_cauchy_inverse<GF256>(2, 11);
  check_cauchy_inverse<GF256>(5, 12);
  check_cauchy_inverse<GF256>(16, 13);
}

TEST(CauchyInverse, MatchesGaussianGF65536) {
  check_cauchy_inverse<GF65536>(8, 14);
  check_cauchy_inverse<GF65536>(32, 15);
}

TEST(CauchyInverse, BadDimensionsThrow) {
  std::vector<GF256::Element> xs{1, 2};
  std::vector<GF256::Element> ys{3};
  EXPECT_THROW(gf::cauchy_inverse<GF256>(xs, ys), std::invalid_argument);
  EXPECT_THROW(gf::cauchy_inverse<GF256>({}, {}), std::invalid_argument);
}

}  // namespace
}  // namespace fountain
