#!/usr/bin/env bash
# Header self-containment check: every public header under src/ must compile
# as its own translation unit (i.e. include everything it uses), so the API
# headers cannot grow hidden include-order dependencies. CI runs this; run it
# locally as tools/check_headers.sh [compiler].
set -u

cd "$(dirname "$0")/.."
CXX="${1:-${CXX:-c++}}"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

status=0
checked=0
while IFS= read -r header; do
  rel="${header#src/}"
  tu="$tmpdir/tu.cpp"
  printf '#include "%s"\n#include "%s"\nint main() { return 0; }\n' \
    "$rel" "$rel" > "$tu"   # double include also exercises the include guard
  if ! "$CXX" -std=c++20 -Wall -Wextra -Werror -fsyntax-only -Isrc "$tu" \
      2> "$tmpdir/err"; then
    echo "NOT SELF-CONTAINED: $header"
    sed 's/^/    /' "$tmpdir/err"
    status=1
  fi
  checked=$((checked + 1))
done < <(find src -name '*.hpp' | sort)

echo "checked $checked headers: $([ "$status" -eq 0 ] && echo all self-contained || echo FAILURES above)"
exit "$status"
