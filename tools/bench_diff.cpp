// bench_diff — the CI perf-regression gate.
//
// Compares a fresh bench run (JSON-lines records from bench_common.hpp's
// append_json) against the checked-in bench/baseline.json and exits non-zero
// when any gated record's throughput dropped by more than the threshold.
//
//   bench_diff --baseline bench/baseline.json --current BENCH_results.json
//              [--threshold 0.10]
//
// Design:
//   * Records are matched by (bench, name, kernel). When a file contains the
//     same key more than once (append semantics across runs), the last
//     occurrence wins — it is the most recent measurement.
//   * Gated records are those with mb_per_s > 0 whose name mentions a
//     data-path stage (xor / fma / encode / decode). Efficiency metrics,
//     overhead fractions and receiver rates carry value-only records and are
//     deliberately not gated: they are deterministic outputs checked by the
//     scenario tests, not throughput.
//   * Host normalization: both files must contain the scalar
//     "calibration/xor64k" record — a fixed workload whose speed tracks only
//     the machine. Every current throughput is divided by
//     (current calibration / baseline calibration) before comparison, so
//     running the gate on a slower or faster host than the one that seeded
//     the baseline does not produce false verdicts.
//   * Schema versions must match kExpectedSchema in both files; a stale
//     baseline is a configuration error (exit 2), not a pass.
//
// Exit codes: 0 = no regression; 1 = at least one gated record regressed;
// 2 = usage, parse, schema, or calibration error.
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

namespace {

constexpr int kExpectedSchema = 2;
constexpr const char* kCalibrationName = "calibration/xor64k";
constexpr const char* kCalibrationKernel = "scalar";

struct Record {
  std::string bench;
  std::string name;
  std::string kernel;
  double mb_per_s = 0;
  double seconds = 0;
  int schema = -1;  // -1: field absent
};

/// Minimal parser for the flat one-line JSON objects append_json emits:
/// string and number values only, no nesting, no escapes beyond \" and \\.
/// Returns false (with a message in `err`) on malformed input.
bool parse_line(const std::string& line, Record& out, std::string& err) {
  std::size_t i = 0;
  const auto skip_ws = [&] {
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
  };
  const auto parse_string = [&](std::string& s) -> bool {
    if (i >= line.size() || line[i] != '"') return false;
    ++i;
    s.clear();
    while (i < line.size() && line[i] != '"') {
      if (line[i] == '\\' && i + 1 < line.size()) ++i;
      s.push_back(line[i++]);
    }
    if (i >= line.size()) return false;
    ++i;  // closing quote
    return true;
  };

  skip_ws();
  if (i >= line.size() || line[i] != '{') {
    err = "expected '{'";
    return false;
  }
  ++i;
  for (;;) {
    skip_ws();
    if (i < line.size() && line[i] == '}') break;
    std::string key;
    if (!parse_string(key)) {
      err = "expected key string";
      return false;
    }
    skip_ws();
    if (i >= line.size() || line[i] != ':') {
      err = "expected ':' after key";
      return false;
    }
    ++i;
    skip_ws();
    if (i < line.size() && line[i] == '"') {
      std::string value;
      if (!parse_string(value)) {
        err = "unterminated string value";
        return false;
      }
      if (key == "bench") out.bench = value;
      else if (key == "name") out.name = value;
      else if (key == "kernel") out.kernel = value;
    } else {
      char* end = nullptr;
      const double value = std::strtod(line.c_str() + i, &end);
      if (end == line.c_str() + i) {
        err = "expected number for key '" + key + "'";
        return false;
      }
      i = static_cast<std::size_t>(end - line.c_str());
      if (key == "mb_per_s") out.mb_per_s = value;
      else if (key == "seconds") out.seconds = value;
      else if (key == "schema") out.schema = static_cast<int>(value);
    }
    skip_ws();
    if (i < line.size() && line[i] == ',') {
      ++i;
      continue;
    }
    if (i < line.size() && line[i] == '}') break;
    err = "expected ',' or '}'";
    return false;
  }
  return true;
}

using RecordMap = std::map<std::string, Record>;

std::string key_of(const Record& r) {
  return r.bench + '\x1f' + r.name + '\x1f' + r.kernel;
}

/// Loads a JSON-lines bench file; enforces the schema version on every
/// record. Returns false on I/O, parse, or schema mismatch.
bool load_file(const char* path, RecordMap& out) {
  std::ifstream f(path);
  if (!f) {
    std::fprintf(stderr, "bench_diff: cannot open %s\n", path);
    return false;
  }
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(f, line)) {
    ++lineno;
    if (line.find_first_not_of(" \t\r\n") == std::string::npos) continue;
    Record r;
    std::string err;
    if (!parse_line(line, r, err)) {
      std::fprintf(stderr, "bench_diff: %s:%zu: %s\n", path, lineno,
                   err.c_str());
      return false;
    }
    if (r.schema != kExpectedSchema) {
      std::fprintf(stderr,
                   "bench_diff: %s:%zu: schema %d, expected %d — regenerate "
                   "the file with current bench binaries\n",
                   path, lineno, r.schema, kExpectedSchema);
      return false;
    }
    out[key_of(r)] = r;  // last occurrence of a key wins
  }
  return true;
}

bool is_calibration(const Record& r) {
  return r.name == kCalibrationName && r.kernel == kCalibrationKernel;
}

/// A record participates in the gate when it measures data-path throughput.
bool is_gated(const Record& r) {
  if (r.mb_per_s <= 0 || is_calibration(r)) return false;
  return r.name.find("xor") != std::string::npos ||
         r.name.find("fma") != std::string::npos ||
         r.name.find("encode") != std::string::npos ||
         r.name.find("decode") != std::string::npos;
}

const Record* find_calibration(const RecordMap& m) {
  for (const auto& [key, r] : m) {
    if (is_calibration(r) && r.mb_per_s > 0) return &r;
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  const char* baseline_path = nullptr;
  const char* current_path = nullptr;
  double threshold = 0.10;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--current") == 0 && i + 1 < argc) {
      current_path = argv[++i];
    } else if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
      threshold = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr, "bench_diff: unknown argument '%s'\n", argv[i]);
      baseline_path = nullptr;
      break;
    }
  }
  if (baseline_path == nullptr || current_path == nullptr || threshold <= 0 ||
      threshold >= 1) {
    std::fprintf(stderr,
                 "usage: bench_diff --baseline <file> --current <file> "
                 "[--threshold 0.10]\n");
    return 2;
  }

  RecordMap baseline, current;
  if (!load_file(baseline_path, baseline)) return 2;
  if (!load_file(current_path, current)) return 2;

  const Record* base_cal = find_calibration(baseline);
  const Record* cur_cal = find_calibration(current);
  if (base_cal == nullptr || cur_cal == nullptr) {
    std::fprintf(stderr,
                 "bench_diff: calibration record '%s' (kernel %s) missing "
                 "from %s — cannot normalize across hosts\n",
                 kCalibrationName, kCalibrationKernel,
                 base_cal == nullptr ? baseline_path : current_path);
    return 2;
  }
  const double scale = cur_cal->mb_per_s / base_cal->mb_per_s;
  std::printf("bench_diff: calibration %.1f -> %.1f MB/s (host scale %.3f), "
              "threshold %.0f%%\n",
              base_cal->mb_per_s, cur_cal->mb_per_s, scale, threshold * 100);

  int gated = 0, regressed = 0, missing = 0;
  for (const auto& [key, base] : baseline) {
    if (!is_gated(base)) continue;
    ++gated;
    const auto it = current.find(key);
    if (it == current.end() || it->second.mb_per_s <= 0) {
      // A tier can legitimately disappear when the gate runs on different
      // hardware than the baseline host (e.g. no GFNI); warn, don't fail.
      std::fprintf(stderr, "bench_diff: WARNING: no current record for %s/%s "
                           "(%s)\n",
                   base.bench.c_str(), base.name.c_str(), base.kernel.c_str());
      ++missing;
      continue;
    }
    const double normalized = it->second.mb_per_s / scale;
    const double floor = base.mb_per_s * (1.0 - threshold);
    if (normalized < floor) {
      std::printf("REGRESSION %-34s %-8s %9.1f -> %9.1f MB/s (norm %9.1f, "
                  "floor %9.1f)\n",
                  base.name.c_str(), base.kernel.c_str(), base.mb_per_s,
                  it->second.mb_per_s, normalized, floor);
      ++regressed;
    }
  }

  std::printf("bench_diff: %d gated record(s), %d regressed, %d missing\n",
              gated, regressed, missing);
  if (gated == 0) {
    std::fprintf(stderr, "bench_diff: baseline contains no gated records\n");
    return 2;
  }
  return regressed > 0 ? 1 : 0;
}
